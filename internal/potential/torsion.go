package potential

import (
	"math"

	"sctuple/internal/geom"
)

// Torsion is a four-body dihedral term over chains (i, j, k, l):
//
//	E = K (1 + cos φ) · S(|b1|) S(|b2|) S(|b3|),
//
// where φ is the dihedral angle of the bond vectors b1 = r_j − r_i,
// b2 = r_k − r_j, b3 = r_l − r_k and S(r) = (1 − (r/rc)²)² is a smooth
// radial envelope that takes the place of fixed bond topology in this
// dynamic-tuple setting: the term switches off continuously at the
// link cutoff, exactly like the bond-order decay of reactive force
// fields whose torsions motivate n = 4 in the paper (§1).
//
// Dihedral gradients follow Blondel & Karplus (J. Comput. Chem. 17,
// 1132 (1996)); the envelope contributes radial forces along each
// bond by the product rule.
type Torsion struct {
	K  float64 // barrier scale (eV)
	Rc float64 // link cutoff (Å)
}

// NewTorsion builds the term.
func NewTorsion(k, rc float64) *Torsion { return &Torsion{K: k, Rc: rc} }

// N returns 4.
func (t *Torsion) N() int { return 4 }

// Cutoff returns the link cutoff.
func (t *Torsion) Cutoff() float64 { return t.Rc }

// envelope returns S(r) and S'(r).
func (t *Torsion) envelope(r float64) (s, ds float64) {
	x := r / t.Rc
	if x >= 1 {
		return 0, 0
	}
	u := 1 - x*x
	return u * u, -4 * r / (t.Rc * t.Rc) * u
}

// Eval implements Term for the chain (i, j, k, l).
func (t *Torsion) Eval(_ []int32, pos []geom.Vec3, f []geom.Vec3) float64 {
	b1 := pos[1].Sub(pos[0])
	b2 := pos[2].Sub(pos[1])
	b3 := pos[3].Sub(pos[2])
	l1, l2, l3 := b1.Norm(), b2.Norm(), b3.Norm()
	if l1 >= t.Rc || l2 >= t.Rc || l3 >= t.Rc || l1 == 0 || l2 == 0 || l3 == 0 {
		return 0
	}
	m := b1.Cross(b2)
	n := b2.Cross(b3)
	m2 := m.Norm2()
	n2 := n.Norm2()
	if m2 < 1e-18 || n2 < 1e-18 {
		// Collinear chain: dihedral undefined, energy contribution
		// taken as the φ-averaged K with zero angular force.
		s1, _ := t.envelope(l1)
		s2, _ := t.envelope(l2)
		s3, _ := t.envelope(l3)
		return t.K * s1 * s2 * s3
	}
	mn := math.Sqrt(m2 * n2)
	cosPhi := m.Dot(n) / mn
	if cosPhi > 1 {
		cosPhi = 1
	} else if cosPhi < -1 {
		cosPhi = -1
	}
	sinPhi := m.Cross(n).Dot(b2) / (mn * l2)
	phi := math.Atan2(sinPhi, cosPhi)

	s1, ds1 := t.envelope(l1)
	s2, ds2 := t.envelope(l2)
	s3, ds3 := t.envelope(l3)
	ang := t.K * (1 + math.Cos(phi))
	e := ang * s1 * s2 * s3

	// Angular part: dE/dφ = −K sinφ · S1S2S3, with Blondel-Karplus
	// dihedral gradients.
	dEdPhi := -t.K * math.Sin(phi) * s1 * s2 * s3
	dPhi1 := m.Scale(-l2 / m2) // ∂φ/∂r_i
	dPhi4 := n.Scale(l2 / n2)  // ∂φ/∂r_l
	// Middle-atom gradients follow from translational invariance and
	// the lever arms of b1, b3 on the central bond (note b1 here points
	// i → j, the reverse of the Blondel-Karplus convention, which flips
	// the sign of the c12 projection).
	c12 := b1.Dot(b2) / (l2 * l2)
	c32 := b3.Dot(b2) / (l2 * l2)
	dPhi2 := dPhi1.Scale(-1 - c12).Add(dPhi4.Scale(c32)) // ∂φ/∂r_j
	dPhi3 := dPhi1.Scale(c12).Sub(dPhi4.Scale(1 + c32))  // ∂φ/∂r_k

	f[0] = f[0].Sub(dPhi1.Scale(dEdPhi))
	f[1] = f[1].Sub(dPhi2.Scale(dEdPhi))
	f[2] = f[2].Sub(dPhi3.Scale(dEdPhi))
	f[3] = f[3].Sub(dPhi4.Scale(dEdPhi))

	// Radial envelope part: −∂E/∂r along each bond.
	// E = ang·S1S2S3 ⇒ ∂E/∂l1 = ang·S1'·S2S3, etc.
	g1 := ang * ds1 * s2 * s3
	g2 := ang * s1 * ds2 * s3
	g3 := ang * s1 * s2 * ds3
	u1 := b1.Scale(g1 / l1)
	u2 := b2.Scale(g2 / l2)
	u3 := b3.Scale(g3 / l3)
	// ∂l1/∂r_i = −b̂1, ∂l1/∂r_j = +b̂1, and so on down the chain.
	f[0] = f[0].Add(u1)
	f[1] = f[1].Sub(u1).Add(u2)
	f[2] = f[2].Sub(u2).Add(u3)
	f[3] = f[3].Sub(u3)
	return e
}

// NewTorsionModel wraps a Torsion term (plus a Lennard-Jones pair term
// to hold the chain fluid together) in a single-species model, for
// n = 4 demonstrations.
func NewTorsionModel(k, rcTorsion, epsilon, sigma, rcPair, mass float64) *Model {
	return &Model{
		Name:    "lj-torsion",
		Species: []Species{{Name: "X", Mass: mass}},
		Terms: []Term{
			NewLennardJones(epsilon, sigma, rcPair),
			NewTorsion(k, rcTorsion),
		},
	}
}
