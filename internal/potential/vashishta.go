package potential

import (
	"math"

	"sctuple/internal/geom"
)

// CoulombConstant is e²/4πε₀ in eV·Å.
const CoulombConstant = 14.399645

// VashishtaPairParams parameterizes the two-body part of the
// Vashishta potential for one species pair:
//
//	V₂(r) = H/r^η + Z_i Z_j e²/(4πε₀) · exp(-r/λ)/r − D/r⁴ · exp(-r/ξ)
//
// (steric repulsion, screened Coulomb, screened charge-dipole). The
// potential is truncated at Rc and shifted in both energy and force so
// V and V′ vanish continuously at the cutoff.
type VashishtaPairParams struct {
	H      float64 // steric strength (eV·Å^η)
	Eta    float64 // steric exponent
	ZZ     float64 // Z_i·Z_j in e² (multiplied by CoulombConstant internally)
	Lambda float64 // Coulomb screening length (Å)
	D      float64 // charge-dipole strength (eV·Å⁴)
	Xi     float64 // charge-dipole screening length (Å)
}

// VashishtaTripletParams parameterizes the three-body bond-bending
// part for one (end, center, end) species combination:
//
//	V₃ = B · exp(γ/(r_ij−r0) + γ/(r_kj−r0)) · (cosθ − cosθ̄)² / (1 + C(cosθ − cosθ̄)²)
//
// for r_ij, r_kj < r0 (zero otherwise), where j is the central atom
// and θ the angle at j.
type VashishtaTripletParams struct {
	B         float64 // strength (eV)
	CosTheta0 float64 // preferred cosine cosθ̄
	C         float64 // saturation parameter (0 in the 1990 model)
	Gamma     float64 // radial decay (Å)
	R0        float64 // three-body cutoff (Å)
}

// vashishtaPair is the n = 2 term over all species pairs.
type vashishtaPair struct {
	rc     float64
	params [][]VashishtaPairParams // [si][sj], symmetric
	shiftE [][]float64             // V(rc)
	shiftF [][]float64             // V'(rc)
}

// vashishtaTriplet is the n = 3 term; params indexed
// [center][end][end], symmetric in the ends. A zero B disables the
// combination.
type vashishtaTriplet struct {
	r0     float64
	params [][][]VashishtaTripletParams
}

// NewSilicaModel returns the SiO₂ model of Vashishta, Kalia, Rino &
// Ebbsjö, PRB 41, 12197 (1990) — the silica MD application
// benchmarked in the paper (§5). Species 0 is Si, species 1 is O. The
// pair cutoff is 5.5 Å and the three-body cutoff 2.6 Å, giving the
// r_cut3/r_cut2 ≈ 0.47 ratio the paper quotes. Parameter values are
// transcribed from the published form of the model.
func NewSilicaModel() *Model {
	const (
		rc = 5.5 // pair cutoff (Å)
		r0 = 2.6 // triplet cutoff (Å)
	)
	zSi, zO := 1.2, -0.6
	pair := [][]VashishtaPairParams{
		{ // Si-Si, Si-O
			{H: 0.82023, Eta: 11, ZZ: zSi * zSi, Lambda: 4.43, D: 0.0, Xi: 2.5},
			{H: 163.47, Eta: 9, ZZ: zSi * zO, Lambda: 4.43, D: 44.2357, Xi: 2.5},
		},
		{ // O-Si, O-O
			{H: 163.47, Eta: 9, ZZ: zO * zSi, Lambda: 4.43, D: 44.2357, Xi: 2.5},
			{H: 743.848, Eta: 7, ZZ: zO * zO, Lambda: 4.43, D: 22.1179, Xi: 2.5},
		},
	}
	// Three-body terms: O-Si-O bending at the tetrahedral angle
	// (center Si) and Si-O-Si bending at ~141° (center O).
	oSiO := VashishtaTripletParams{B: 4.993, CosTheta0: -1.0 / 3.0, C: 0, Gamma: 1.0, R0: r0}
	siOSi := VashishtaTripletParams{B: 19.972, CosTheta0: math.Cos(141.0 * math.Pi / 180.0), C: 0, Gamma: 1.0, R0: r0}
	trip := make([][][]VashishtaTripletParams, 2)
	for c := range trip {
		trip[c] = make([][]VashishtaTripletParams, 2)
		for a := range trip[c] {
			trip[c][a] = make([]VashishtaTripletParams, 2)
		}
	}
	trip[0][1][1] = oSiO  // center Si, ends O,O
	trip[1][0][0] = siOSi // center O, ends Si,Si

	return &Model{
		Name: "vashishta-sio2-1990",
		Species: []Species{
			{Name: "Si", Mass: 28.0855},
			{Name: "O", Mass: 15.9994},
		},
		Terms: []Term{
			newVashishtaPair(rc, pair),
			&vashishtaTriplet{r0: r0, params: trip},
		},
	}
}

// NewVashishtaPairTerm builds a standalone Vashishta pair term from a
// symmetric parameter table, truncated and force-shifted at rc.
func NewVashishtaPairTerm(rc float64, params [][]VashishtaPairParams) Term {
	return newVashishtaPair(rc, params)
}

// NewVashishtaTripletTerm builds a standalone Vashishta three-body
// term from a [center][end][end] parameter table with common cutoff r0.
func NewVashishtaTripletTerm(r0 float64, params [][][]VashishtaTripletParams) Term {
	return &vashishtaTriplet{r0: r0, params: params}
}

func newVashishtaPair(rc float64, params [][]VashishtaPairParams) *vashishtaPair {
	vp := &vashishtaPair{rc: rc, params: params}
	ns := len(params)
	vp.shiftE = make([][]float64, ns)
	vp.shiftF = make([][]float64, ns)
	for i := 0; i < ns; i++ {
		vp.shiftE[i] = make([]float64, ns)
		vp.shiftF[i] = make([]float64, ns)
		for j := 0; j < ns; j++ {
			e, de := vashishtaPairRaw(params[i][j], rc)
			vp.shiftE[i][j] = e
			vp.shiftF[i][j] = de
		}
	}
	return vp
}

// vashishtaPairRaw returns the unshifted V₂(r) and its derivative.
func vashishtaPairRaw(p VashishtaPairParams, r float64) (v, dv float64) {
	steric := p.H / math.Pow(r, p.Eta)
	coul := p.ZZ * CoulombConstant * math.Exp(-r/p.Lambda) / r
	dip := -p.D / (r * r * r * r) * math.Exp(-r/p.Xi)
	v = steric + coul + dip
	dv = -p.Eta*steric/r - coul*(1/r+1/p.Lambda) + dip*(-4/r-1/p.Xi)
	return v, dv
}

// N returns 2.
func (vp *vashishtaPair) N() int { return 2 }

// Cutoff returns the pair cutoff.
func (vp *vashishtaPair) Cutoff() float64 { return vp.rc }

// Eval implements Term for the pair (i, j).
func (vp *vashishtaPair) Eval(species []int32, pos []geom.Vec3, f []geom.Vec3) float64 {
	d := pos[0].Sub(pos[1])
	r2 := d.Norm2()
	if r2 >= vp.rc*vp.rc || r2 == 0 {
		return 0
	}
	r := math.Sqrt(r2)
	si, sj := species[0], species[1]
	p := vp.params[si][sj]
	v, dv := vashishtaPairRaw(p, r)
	// Energy-and-force shift: Ṽ(r) = V(r) − V(rc) − (r − rc)·V'(rc).
	e := v - vp.shiftE[si][sj] - (r-vp.rc)*vp.shiftF[si][sj]
	de := dv - vp.shiftF[si][sj]
	fv := d.Scale(-de / r) // F_i = −dṼ/dr · r̂
	f[0] = f[0].Add(fv)
	f[1] = f[1].Sub(fv)
	return e
}

// N returns 3.
func (vt *vashishtaTriplet) N() int { return 3 }

// Cutoff returns the three-body cutoff r0.
func (vt *vashishtaTriplet) Cutoff() float64 { return vt.r0 }

// Eval implements Term for the chain (i, j, k) with central atom j.
func (vt *vashishtaTriplet) Eval(species []int32, pos []geom.Vec3, f []geom.Vec3) float64 {
	p := vt.params[species[1]][species[0]][species[2]]
	if p.B == 0 {
		return 0
	}
	r1 := pos[0].Sub(pos[1]) // r_ij
	r2 := pos[2].Sub(pos[1]) // r_kj
	a := r1.Norm()
	b := r2.Norm()
	if a >= p.R0 || b >= p.R0 || a == 0 || b == 0 {
		return 0
	}
	cosT := r1.Dot(r2) / (a * b)
	delta := cosT - p.CosTheta0
	den := 1 + p.C*delta*delta
	q := delta * delta / den
	radial := p.B * math.Exp(p.Gamma/(a-p.R0)+p.Gamma/(b-p.R0))
	e := radial * q

	dPda := -radial * p.Gamma / ((a - p.R0) * (a - p.R0))
	dPdb := -radial * p.Gamma / ((b - p.R0) * (b - p.R0))
	dQdc := 2 * delta / (den * den)

	// ∇_i cosθ = r2/(ab) − cosθ·r1/a² ; ∇_k symmetric.
	gradICos := r2.Scale(1 / (a * b)).Sub(r1.Scale(cosT / (a * a)))
	gradKCos := r1.Scale(1 / (a * b)).Sub(r2.Scale(cosT / (b * b)))

	fi := r1.Scale(dPda * q / a).Add(gradICos.Scale(radial * dQdc)).Neg()
	fk := r2.Scale(dPdb * q / b).Add(gradKCos.Scale(radial * dQdc)).Neg()
	f[0] = f[0].Add(fi)
	f[2] = f[2].Add(fk)
	f[1] = f[1].Sub(fi.Add(fk)) // momentum conservation
	return e
}
