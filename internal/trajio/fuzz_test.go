package trajio

import (
	"io"
	"strings"
	"testing"
)

// FuzzReadFrame hardens the parser against malformed trajectories: it
// must return an error or a frame, never panic, and any parsed frame
// must be internally consistent.
func FuzzReadFrame(f *testing.F) {
	f.Add("1\nLattice=\"1 0 0 0 1 0 0 0 1\"\nSi 0 0 0\n")
	f.Add("2\nLattice=\"2 0 0 0 3 0 0 0 4\" step=1\nSi 0.5 0.5 0.5\nO 1 1 1\n")
	f.Add("0\nLattice=\"1 0 0 0 1 0 0 0 1\"\n")
	f.Add("x\n")
	f.Add("")
	f.Add("3\nLattice=\"1 0 0\"\n")
	f.Add("1\nLattice=\"1 0 0 0 1 0 0 0 1\nSi nan inf 0\n")
	f.Add("9999999999\nLattice=\"1 0 0 0 1 0 0 0 1\"\n")
	f.Fuzz(func(t *testing.T, input string) {
		r := NewReader(strings.NewReader(input))
		for i := 0; i < 4; i++ {
			frame, err := r.ReadFrame()
			if err != nil {
				if err != io.EOF && frame != nil {
					t.Fatal("frame returned alongside an error")
				}
				return
			}
			if len(frame.Names) != len(frame.Pos) {
				t.Fatalf("inconsistent frame: %d names, %d positions", len(frame.Names), len(frame.Pos))
			}
			if !(frame.Box.L.X > 0 && frame.Box.L.Y > 0 && frame.Box.L.Z > 0) {
				t.Fatalf("non-positive box %v accepted", frame.Box.L)
			}
		}
	})
}
