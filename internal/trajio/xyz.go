// Package trajio reads and writes atomic configurations in the
// (extended) XYZ trajectory format, the lingua franca of MD
// visualization tools. Frames carry the periodic box in the comment
// line as a Lattice= attribute, so round trips preserve the full
// simulation state geometry.
package trajio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"sctuple/internal/geom"
)

// Frame is one trajectory snapshot.
type Frame struct {
	Box     geom.Box
	Names   []string // species names, parallel to Pos
	Pos     []geom.Vec3
	Comment string // free-form remainder of the comment line
}

// N returns the atom count.
func (f *Frame) N() int { return len(f.Pos) }

// WriteFrame appends one frame in extended-XYZ form:
//
//	<natoms>
//	Lattice="Lx 0 0 0 Ly 0 0 0 Lz" <comment>
//	<name> <x> <y> <z>
func WriteFrame(w io.Writer, f *Frame) error {
	if len(f.Names) != len(f.Pos) {
		return fmt.Errorf("trajio: %d names for %d positions", len(f.Names), len(f.Pos))
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d\n", len(f.Pos))
	fmt.Fprintf(bw, "Lattice=\"%g 0 0 0 %g 0 0 0 %g\"", f.Box.L.X, f.Box.L.Y, f.Box.L.Z)
	if f.Comment != "" {
		fmt.Fprintf(bw, " %s", f.Comment)
	}
	fmt.Fprintln(bw)
	for i, r := range f.Pos {
		fmt.Fprintf(bw, "%s %.17g %.17g %.17g\n", f.Names[i], r.X, r.Y, r.Z)
	}
	return bw.Flush()
}

// Reader streams frames from an XYZ trajectory.
type Reader struct {
	s    *bufio.Scanner
	line int
}

// NewReader wraps an input stream.
func NewReader(r io.Reader) *Reader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 1<<16), 1<<22)
	return &Reader{s: s}
}

func (r *Reader) next() (string, bool) {
	if !r.s.Scan() {
		return "", false
	}
	r.line++
	return r.s.Text(), true
}

// ReadFrame parses the next frame. It returns io.EOF when the stream
// is exhausted cleanly.
func (r *Reader) ReadFrame() (*Frame, error) {
	header, ok := r.next()
	if !ok {
		if err := r.s.Err(); err != nil {
			return nil, err
		}
		return nil, io.EOF
	}
	header = strings.TrimSpace(header)
	if header == "" {
		return nil, io.EOF
	}
	n, err := strconv.Atoi(header)
	if err != nil || n < 0 {
		return nil, fmt.Errorf("trajio: line %d: bad atom count %q", r.line, header)
	}
	comment, ok := r.next()
	if !ok {
		return nil, fmt.Errorf("trajio: line %d: missing comment line", r.line)
	}
	// Never trust the header for allocation: a corrupt count must fail
	// at the first missing atom line, not by exhausting memory.
	capHint := n
	if capHint > 65536 {
		capHint = 65536
	}
	f := &Frame{
		Names: make([]string, 0, capHint),
		Pos:   make([]geom.Vec3, 0, capHint),
	}
	f.Box, f.Comment, err = parseComment(comment)
	if err != nil {
		return nil, fmt.Errorf("trajio: line %d: %w", r.line, err)
	}
	for i := 0; i < n; i++ {
		line, ok := r.next()
		if !ok {
			return nil, fmt.Errorf("trajio: truncated frame: %d of %d atoms", i, n)
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			return nil, fmt.Errorf("trajio: line %d: want 4 fields, got %d", r.line, len(fields))
		}
		var v geom.Vec3
		for c := 0; c < 3; c++ {
			x, err := strconv.ParseFloat(fields[c+1], 64)
			if err != nil {
				return nil, fmt.Errorf("trajio: line %d: %w", r.line, err)
			}
			v.SetComp(c, x)
		}
		f.Names = append(f.Names, fields[0])
		f.Pos = append(f.Pos, v)
	}
	return f, nil
}

// ReadAll collects every remaining frame.
func (r *Reader) ReadAll() ([]*Frame, error) {
	var out []*Frame
	for {
		f, err := r.ReadFrame()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, f)
	}
}

// parseComment extracts the Lattice attribute (orthorhombic diagonal)
// and returns the rest of the comment.
func parseComment(line string) (geom.Box, string, error) {
	const key = `Lattice="`
	idx := strings.Index(line, key)
	if idx < 0 {
		return geom.Box{}, "", fmt.Errorf("no Lattice attribute in %q", line)
	}
	rest := line[idx+len(key):]
	end := strings.Index(rest, `"`)
	if end < 0 {
		return geom.Box{}, "", fmt.Errorf("unterminated Lattice attribute")
	}
	fields := strings.Fields(rest[:end])
	if len(fields) != 9 {
		return geom.Box{}, "", fmt.Errorf("Lattice needs 9 numbers, got %d", len(fields))
	}
	vals := make([]float64, 9)
	for i, f := range fields {
		x, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return geom.Box{}, "", err
		}
		vals[i] = x
	}
	for i, v := range vals {
		onDiag := i == 0 || i == 4 || i == 8
		if !onDiag && v != 0 {
			return geom.Box{}, "", fmt.Errorf("only orthorhombic lattices supported")
		}
		if onDiag && !(v > 0) {
			return geom.Box{}, "", fmt.Errorf("non-positive lattice diagonal")
		}
	}
	comment := strings.Join(strings.Fields(line[:idx]+rest[end+1:]), " ")
	return geom.NewBox(vals[0], vals[4], vals[8]), comment, nil
}
