package trajio

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"

	"sctuple/internal/geom"
)

func randomFrame(rng *rand.Rand, n int) *Frame {
	f := &Frame{
		Box:     geom.NewBox(10, 12.5, 8.25),
		Comment: "step=42",
	}
	names := []string{"Si", "O"}
	for i := 0; i < n; i++ {
		f.Names = append(f.Names, names[rng.Intn(2)])
		f.Pos = append(f.Pos, geom.V(rng.Float64()*10, rng.Float64()*12.5, rng.Float64()*8.25))
	}
	return f
}

func TestRoundTripSingleFrame(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	want := randomFrame(rng, 50)
	var buf bytes.Buffer
	if err := WriteFrame(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != want.N() || got.Comment != want.Comment {
		t.Fatalf("frame meta mismatch: %d atoms, comment %q", got.N(), got.Comment)
	}
	if got.Box.L != want.Box.L {
		t.Fatalf("box %v, want %v", got.Box.L, want.Box.L)
	}
	for i := range want.Pos {
		if got.Names[i] != want.Names[i] {
			t.Fatalf("atom %d name %q, want %q", i, got.Names[i], want.Names[i])
		}
		if got.Pos[i].Sub(want.Pos[i]).Norm() > 1e-9 {
			t.Fatalf("atom %d position %v, want %v", i, got.Pos[i], want.Pos[i])
		}
	}
}

func TestRoundTripTrajectory(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var buf bytes.Buffer
	var frames []*Frame
	for i := 0; i < 5; i++ {
		f := randomFrame(rng, 10+i)
		frames = append(frames, f)
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(frames) {
		t.Fatalf("read %d frames, want %d", len(got), len(frames))
	}
	for i := range frames {
		if got[i].N() != frames[i].N() {
			t.Fatalf("frame %d has %d atoms, want %d", i, got[i].N(), frames[i].N())
		}
	}
}

func TestReadEOF(t *testing.T) {
	r := NewReader(strings.NewReader(""))
	if _, err := r.ReadFrame(); err != io.EOF {
		t.Errorf("empty stream: err = %v, want EOF", err)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"bad count":        "x\ncomment\n",
		"missing comment":  "2\n",
		"truncated atoms":  "2\nLattice=\"1 0 0 0 1 0 0 0 1\"\nSi 0 0 0\n",
		"bad field count":  "1\nLattice=\"1 0 0 0 1 0 0 0 1\"\nSi 0 0\n",
		"bad coordinate":   "1\nLattice=\"1 0 0 0 1 0 0 0 1\"\nSi a b c\n",
		"no lattice":       "1\njust a comment\nSi 0 0 0\n",
		"non-orthorhombic": "1\nLattice=\"1 0.5 0 0 1 0 0 0 1\"\nSi 0 0 0\n",
		"short lattice":    "1\nLattice=\"1 0 0\"\nSi 0 0 0\n",
	}
	for name, input := range cases {
		if _, err := NewReader(strings.NewReader(input)).ReadFrame(); err == nil {
			t.Errorf("%s: error expected", name)
		}
	}
}

func TestWriteValidation(t *testing.T) {
	f := &Frame{Box: geom.NewCubicBox(1), Names: []string{"Si"}, Pos: nil}
	if err := WriteFrame(io.Discard, f); err == nil {
		t.Error("mismatched names/positions accepted")
	}
}

func TestCommentPreserved(t *testing.T) {
	input := "1\nprefix Lattice=\"2 0 0 0 3 0 0 0 4\" suffix words\nO 1 2 3\n"
	f, err := NewReader(strings.NewReader(input)).ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f.Comment != "prefix suffix words" {
		t.Errorf("comment %q", f.Comment)
	}
	if f.Box.L != geom.V(2, 3, 4) {
		t.Errorf("box %v", f.Box.L)
	}
}
