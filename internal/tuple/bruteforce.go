package tuple

import (
	"sort"

	"sctuple/internal/geom"
)

// BruteForce enumerates Γ*(n) (Eq. 6) directly from positions, with no
// cell structure: every undirected chain of n distinct atoms whose
// consecutive minimum-image distances are below the cutoff, each
// reported once in canonical orientation (first index < last index).
//
// Cost is O(N·k^(n-1)) with k the mean neighbor count, so this is
// strictly a reference for tests and small benchmarks. The returned
// chains are sorted lexicographically.
func BruteForce(box geom.Box, positions []geom.Vec3, n int, cutoff float64) [][]int32 {
	if n < 2 {
		return nil
	}
	adj := adjacency(box, positions, cutoff)
	var out [][]int32
	chain := make([]int32, n)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			if chain[0] < chain[n-1] ||
				(chain[0] == chain[n-1] && false) { // ends never equal: atoms distinct
				c := make([]int32, n)
				copy(c, chain)
				out = append(out, c)
			}
			return
		}
		last := chain[k-1]
		for _, nb := range adj[last] {
			used := false
			for j := 0; j < k; j++ {
				if chain[j] == nb {
					used = true
					break
				}
			}
			if used {
				continue
			}
			chain[k] = nb
			rec(k + 1)
		}
	}
	for i := range positions {
		chain[0] = int32(i)
		rec(1)
	}
	sortChains(out)
	return out
}

// adjacency builds, for every atom, the list of atoms strictly within
// the cutoff (minimum-image convention).
func adjacency(box geom.Box, positions []geom.Vec3, cutoff float64) [][]int32 {
	c2 := cutoff * cutoff
	adj := make([][]int32, len(positions))
	for i := 0; i < len(positions); i++ {
		for j := i + 1; j < len(positions); j++ {
			if box.Distance2(positions[i], positions[j]) < c2 {
				adj[i] = append(adj[i], int32(j))
				adj[j] = append(adj[j], int32(i))
			}
		}
	}
	return adj
}

// Canonical returns the chain in canonical orientation: reversed if the
// last index is below the first.
func Canonical(chain []int32) []int32 {
	if len(chain) == 0 || chain[0] <= chain[len(chain)-1] {
		return chain
	}
	r := make([]int32, len(chain))
	for i, v := range chain {
		r[len(chain)-1-i] = v
	}
	return r
}

// sortChains orders chains lexicographically in place.
func sortChains(chains [][]int32) {
	sort.Slice(chains, func(a, b int) bool {
		x, y := chains[a], chains[b]
		for i := 0; i < len(x) && i < len(y); i++ {
			if x[i] != y[i] {
				return x[i] < y[i]
			}
		}
		return len(x) < len(y)
	})
}

// ChainsEqual reports whether two sorted chain lists are identical.
func ChainsEqual(a, b [][]int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// CollectCanonical runs the enumerator and gathers every emitted tuple
// in canonical orientation, sorted — the form BruteForce produces —
// so tests can compare force sets directly.
func CollectCanonical(e *Enumerator, positions []geom.Vec3) ([][]int32, Stats) {
	var out [][]int32
	st := e.Visit(positions, func(atoms []int32, _ []geom.Vec3) {
		c := make([]int32, len(atoms))
		copy(c, atoms)
		c = Canonical(c)
		out = append(out, c)
	})
	sortChains(out)
	return out, st
}
