// Package tuple implements the uniform-cell-pattern (UCP) n-tuple
// enumeration engine (paper Table 1): given a binned atom
// configuration, a computation pattern, and an interaction cutoff, it
// streams every range-limited n-tuple of the force set to a visitor
// callback.
//
// The engine realizes Eq. 9-10: for every cell q of the domain and
// every path p = (v0,…,v(n-1)) of the pattern it enumerates tuples
// whose k-th atom lies in cell c(q+v(k)), pruning chains whose
// consecutive interatomic distances exceed the cutoff (the filtering
// from the bounding force set S(n) down to Γ*(n)). Periodic wrapping
// is handled by resolving each offset cell to its wrapped image plus a
// real-space image shift, so all distances are plain Euclidean
// distances of the selected images — no minimum-image search inside
// the hot loop.
//
// Reflective redundancy is handled according to the pattern kind:
//
//   - A collapsed pattern (SC, HS, ES) generates each undirected tuple
//     at most once per orientation, except through self-reflective
//     (palindromic) paths, which generate both orientations at the
//     same cell; those are filtered by requiring the first atom's
//     index to be below the last atom's (DedupPalindromic).
//   - An uncollapsed pattern (FS) generates both orientations of every
//     tuple; DedupCanonical keeps the orientation with the smaller
//     first-atom index, reproducing the extra filtering work that the
//     paper charges to FS-MD.
//   - DedupNone emits everything, for measuring raw force-set sizes
//     (paper Fig. 7).
package tuple

import (
	"fmt"

	"sctuple/internal/cell"
	"sctuple/internal/core"
	"sctuple/internal/geom"
)

// MaxN is the largest tuple length the engine supports. ReaxFF-style
// force fields need up to n = 6 (§1); 8 leaves headroom.
const MaxN = 8

// Dedup selects the reflection-deduplication policy of an enumeration.
type Dedup int

const (
	// DedupAuto picks DedupPalindromic for collapsed patterns and
	// DedupCanonical otherwise, by inspecting pattern redundancy once
	// at construction.
	DedupAuto Dedup = iota
	// DedupPalindromic filters the duplicate orientation produced by
	// self-reflective paths only. Correct for collapsed patterns.
	DedupPalindromic
	// DedupCanonical keeps a tuple only when its first atom index is
	// below its last, discarding the mirror orientation wherever it
	// was produced. Correct for patterns that generate both
	// orientations of every tuple (e.g. full shell).
	DedupCanonical
	// DedupNone emits every generated tuple, duplicates included.
	DedupNone
)

// String names the policy.
func (d Dedup) String() string {
	switch d {
	case DedupAuto:
		return "auto"
	case DedupPalindromic:
		return "palindromic"
	case DedupCanonical:
		return "canonical"
	case DedupNone:
		return "none"
	}
	return "unknown"
}

// Stats accumulates the operation counts of an enumeration. The search
// cost of the paper's Eq. 12 corresponds to Candidates: the number of
// partial-chain extensions the engine examined.
type Stats struct {
	Cells            int   // cells visited
	PathApplications int64 // (cell, path) combinations processed
	Candidates       int64 // partial chains extended (search cost)
	DistancePruned   int64 // chains cut by the consecutive-distance test
	DuplicateAtom    int64 // chains cut because an atom repeated
	ReflectionCut    int64 // tuples cut by the dedup policy
	Emitted          int64 // tuples delivered to the visitor
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Cells += other.Cells
	s.PathApplications += other.PathApplications
	s.Candidates += other.Candidates
	s.DistancePruned += other.DistancePruned
	s.DuplicateAtom += other.DuplicateAtom
	s.ReflectionCut += other.ReflectionCut
	s.Emitted += other.Emitted
}

// String summarizes the counters.
func (s Stats) String() string {
	return fmt.Sprintf("cells=%d paths=%d candidates=%d emitted=%d (dist-pruned=%d dup=%d refl=%d)",
		s.Cells, s.PathApplications, s.Candidates, s.Emitted,
		s.DistancePruned, s.DuplicateAtom, s.ReflectionCut)
}

// Visitor receives one n-tuple per call: the global atom indices and
// the image-resolved positions of each tuple member (consecutive
// members are geometrically adjacent; positions may lie outside the
// primary box image). Both slices are reused across calls — copy them
// to retain.
type Visitor func(atoms []int32, pos []geom.Vec3)

// Enumerator streams the force set of one pattern over a binned
// configuration. Construct with NewEnumerator; an Enumerator is
// stateful scratch and must not be shared between goroutines, but
// many Enumerators may share the same Binning.
type Enumerator struct {
	bin     *cell.Binning
	pattern *core.Pattern
	cutoff2 float64
	dedup   Dedup
	n       int
	bounded bool
	keys    []int64

	// palindromic[i] reports whether pattern path i is self-reflective.
	palindromic []bool

	// Scratch reused across cells and calls. CSR binnings resolve each
	// offset cell to an atom-index list; span binnings resolve it to a
	// contiguous storage range [spanLo, spanHi) walked directly — the
	// indirection-free inner loop of the cell-sorted SoA layout.
	atoms  [MaxN]int32
	pos    [MaxN]geom.Vec3
	lists  [MaxN][]int32
	spanLo [MaxN]int32
	spanHi [MaxN]int32
	shifts [MaxN]geom.Vec3
}

// NewEnumerator builds an enumerator for the given binning, pattern,
// and link cutoff (the r_cut-n of Eq. 6, applied between consecutive
// tuple members). It returns an error if the cutoff exceeds a cell
// side (tuple chains could then hop beyond nearest-neighbor cells) or
// if the lattice is too small for the pattern's span (offsets would
// alias and tuples would be double counted).
func NewEnumerator(bin *cell.Binning, pattern *core.Pattern, cutoff float64, dedup Dedup) (*Enumerator, error) {
	if pattern.N() > MaxN {
		return nil, fmt.Errorf("tuple: n=%d exceeds MaxN=%d", pattern.N(), MaxN)
	}
	lat := bin.Lat
	radius := float64(pattern.StepRadius())
	if cutoff > radius*lat.Side.X || cutoff > radius*lat.Side.Y || cutoff > radius*lat.Side.Z {
		return nil, fmt.Errorf("tuple: cutoff %g exceeds pattern reach (step radius %g × cell side %v)",
			cutoff, radius, lat.Side)
	}
	lo, hi := pattern.BoundingBox()
	span := hi.Sub(lo).Max(geom.IVec3{})
	// A pattern spanning s cells needs ≥ s+1 cells per direction so
	// that distinct offsets of one path always address distinct
	// wrapped cells (an offset pair differing by a multiple of the
	// lattice dimension would otherwise alias, and the duplicate-atom
	// check would wrongly reject an atom interacting with its own
	// periodic image). The floor of 3 is the usual cell-method
	// requirement that at most one periodic image of any chain fits
	// within the cutoff.
	need := max(3, max(span.X, max(span.Y, span.Z))+1)
	if !lat.MinSpanOK(need) {
		return nil, fmt.Errorf("tuple: lattice %v too small for pattern span %v (need ≥ %d cells per side)",
			lat.Dims, span, need)
	}
	if dedup == DedupAuto {
		if pattern.RedundancyCount() == 0 {
			dedup = DedupPalindromic
		} else {
			dedup = DedupCanonical
		}
	}
	e := &Enumerator{
		bin:         bin,
		pattern:     pattern,
		cutoff2:     cutoff * cutoff,
		dedup:       dedup,
		n:           pattern.N(),
		palindromic: make([]bool, pattern.Len()),
	}
	for i, p := range pattern.Paths() {
		e.palindromic[i] = p.IsSelfReflective()
	}
	return e, nil
}

// NewBoundedEnumerator builds an enumerator over a non-periodic
// lattice: offset cells outside [0, Dims) are treated as empty instead
// of wrapping. This is the rank-local mode of parallel MD, where each
// rank enumerates over its owned cell block plus an imported halo
// margin; periodicity is handled by the importer, which ships halo
// atoms already shifted into the local frame. No lattice-span check is
// needed (aliasing cannot occur without wrapping).
func NewBoundedEnumerator(bin *cell.Binning, pattern *core.Pattern, cutoff float64, dedup Dedup) (*Enumerator, error) {
	if pattern.N() > MaxN {
		return nil, fmt.Errorf("tuple: n=%d exceeds MaxN=%d", pattern.N(), MaxN)
	}
	lat := bin.Lat
	radius := float64(pattern.StepRadius())
	if cutoff > radius*lat.Side.X || cutoff > radius*lat.Side.Y || cutoff > radius*lat.Side.Z {
		return nil, fmt.Errorf("tuple: cutoff %g exceeds pattern reach (step radius %g × cell side %v)",
			cutoff, radius, lat.Side)
	}
	if dedup == DedupAuto {
		if pattern.RedundancyCount() == 0 {
			dedup = DedupPalindromic
		} else {
			dedup = DedupCanonical
		}
	}
	e := &Enumerator{
		bin:         bin,
		pattern:     pattern,
		cutoff2:     cutoff * cutoff,
		dedup:       dedup,
		n:           pattern.N(),
		bounded:     true,
		palindromic: make([]bool, pattern.Len()),
	}
	for i, p := range pattern.Paths() {
		e.palindromic[i] = p.IsSelfReflective()
	}
	return e, nil
}

// SetKeys installs a per-atom ordering key used by the reflection
// dedup policies in place of the raw atom index. Parallel runs pass
// global atom IDs here so that the canonical-orientation choice is
// identical on every rank regardless of local index assignment. Pass
// nil to revert to local indices.
func (e *Enumerator) SetKeys(keys []int64) { e.keys = keys }

// keyOf returns the dedup ordering key of local atom index a.
func (e *Enumerator) keyOf(a int32) int64 {
	if e.keys != nil {
		return e.keys[a]
	}
	return int64(a)
}

// N returns the tuple length.
func (e *Enumerator) N() int { return e.n }

// Pattern returns the pattern being enumerated.
func (e *Enumerator) Pattern() *core.Pattern { return e.pattern }

// Dedup returns the resolved deduplication policy.
func (e *Enumerator) Dedup() Dedup { return e.dedup }

// Visit streams every tuple anchored at any cell of the full lattice.
func (e *Enumerator) Visit(positions []geom.Vec3, fn Visitor) Stats {
	var st Stats
	e.VisitInto(positions, fn, &st)
	return st
}

// VisitInto is Visit accumulating into a caller-held Stats, so one
// counter block can gather several enumerations (e.g. every term of a
// model into one kernel accumulation slot) without intermediate
// copies.
func (e *Enumerator) VisitInto(positions []geom.Vec3, fn Visitor, st *Stats) {
	dims := e.bin.Lat.Dims
	for x := 0; x < dims.X; x++ {
		for y := 0; y < dims.Y; y++ {
			for z := 0; z < dims.Z; z++ {
				e.VisitCell(geom.IV(x, y, z), positions, fn, st)
			}
		}
	}
}

// VisitCells streams tuples anchored at the given cells only (the Ω of
// one processor in parallel runs).
func (e *Enumerator) VisitCells(cells []geom.IVec3, positions []geom.Vec3, fn Visitor) Stats {
	var st Stats
	e.VisitCellsInto(cells, positions, fn, &st)
	return st
}

// VisitCellsInto is VisitCells accumulating into a caller-held Stats.
func (e *Enumerator) VisitCellsInto(cells []geom.IVec3, positions []geom.Vec3, fn Visitor, st *Stats) {
	for _, q := range cells {
		e.VisitCell(q, positions, fn, st)
	}
}

// VisitCell streams the cell search-space S_cell(c(q), Ψ) of Eq. 10:
// all tuples of all paths anchored at cell q, accumulating counters
// into st.
func (e *Enumerator) VisitCell(q geom.IVec3, positions []geom.Vec3, fn Visitor, st *Stats) {
	if e.bin.Spans() {
		e.visitCellSpans(q, positions, fn, st)
		return
	}
	st.Cells++
	lat := e.bin.Lat
	for pi, p := range e.pattern.Paths() {
		st.PathApplications++
		// Resolve each offset cell once: atom list + image shift. In
		// bounded mode, out-of-lattice cells are empty and shifts are
		// zero (the importer pre-shifted halo atoms).
		empty := false
		for k, v := range p {
			cq := q.Add(v)
			if e.bounded {
				if !cq.InBox(lat.Dims) {
					empty = true
					break
				}
				e.lists[k] = e.bin.CellAtomsLinear(lat.Linear(cq))
				e.shifts[k] = geom.Vec3{}
			} else {
				e.lists[k] = e.bin.CellAtoms(cq)
				e.shifts[k] = lat.ImageShift(cq)
			}
			if len(e.lists[k]) == 0 {
				empty = true
				break
			}
		}
		if empty {
			continue
		}
		e.extend(0, pi, positions, fn, st)
	}
}

// visitCellSpans is VisitCell over a span-layout binning: each offset
// cell resolves to a contiguous storage range instead of an index
// list, and the chain walker iterates storage slots directly. Because
// span storage is canonically ordered (cells sorted, keys ascending
// within a cell), the emission sequence is identical to a CSR binning
// whose cell lists are in the same within-cell order.
func (e *Enumerator) visitCellSpans(q geom.IVec3, positions []geom.Vec3, fn Visitor, st *Stats) {
	st.Cells++
	lat := e.bin.Lat
	for pi, p := range e.pattern.Paths() {
		st.PathApplications++
		empty := false
		for k, v := range p {
			cq := q.Add(v)
			if e.bounded {
				if !cq.InBox(lat.Dims) {
					empty = true
					break
				}
				e.spanLo[k], e.spanHi[k] = e.bin.CellSpan(lat.Linear(cq))
				e.shifts[k] = geom.Vec3{}
			} else {
				e.spanLo[k], e.spanHi[k] = e.bin.CellSpan(lat.Linear(lat.WrapCell(cq)))
				e.shifts[k] = lat.ImageShift(cq)
			}
			if e.spanLo[k] == e.spanHi[k] {
				empty = true
				break
			}
		}
		if empty {
			continue
		}
		e.extendSpan(0, pi, positions, fn, st)
	}
}

// extend grows the chain at level k by every atom of the k-th cell
// list, pruning on duplicate atoms and on the consecutive-distance
// cutoff, and emits completed chains.
func (e *Enumerator) extend(k, pi int, positions []geom.Vec3, fn Visitor, st *Stats) {
	for _, ai := range e.lists[k] {
		st.Candidates++
		dup := false
		for j := 0; j < k; j++ {
			if e.atoms[j] == ai {
				dup = true
				break
			}
		}
		if dup {
			st.DuplicateAtom++
			continue
		}
		r := positions[ai].Add(e.shifts[k])
		if k > 0 {
			d := r.Sub(e.pos[k-1])
			if d.Norm2() >= e.cutoff2 {
				st.DistancePruned++
				continue
			}
		}
		e.atoms[k] = ai
		e.pos[k] = r
		if k+1 < e.n {
			e.extend(k+1, pi, positions, fn, st)
			continue
		}
		// Completed chain: apply the reflection policy.
		switch e.dedup {
		case DedupPalindromic:
			if e.palindromic[pi] && e.keyOf(e.atoms[0]) > e.keyOf(e.atoms[e.n-1]) {
				st.ReflectionCut++
				continue
			}
		case DedupCanonical:
			if e.keyOf(e.atoms[0]) > e.keyOf(e.atoms[e.n-1]) {
				st.ReflectionCut++
				continue
			}
		}
		st.Emitted++
		fn(e.atoms[:e.n], e.pos[:e.n])
	}
}

// extendSpan is extend for span-layout binnings: level k's candidates
// are the storage slots [spanLo[k], spanHi[k]) themselves — no
// indirection load in the hot loop.
func (e *Enumerator) extendSpan(k, pi int, positions []geom.Vec3, fn Visitor, st *Stats) {
	for ai := e.spanLo[k]; ai < e.spanHi[k]; ai++ {
		st.Candidates++
		dup := false
		for j := 0; j < k; j++ {
			if e.atoms[j] == ai {
				dup = true
				break
			}
		}
		if dup {
			st.DuplicateAtom++
			continue
		}
		r := positions[ai].Add(e.shifts[k])
		if k > 0 {
			d := r.Sub(e.pos[k-1])
			if d.Norm2() >= e.cutoff2 {
				st.DistancePruned++
				continue
			}
		}
		e.atoms[k] = ai
		e.pos[k] = r
		if k+1 < e.n {
			e.extendSpan(k+1, pi, positions, fn, st)
			continue
		}
		switch e.dedup {
		case DedupPalindromic:
			if e.palindromic[pi] && e.keyOf(e.atoms[0]) > e.keyOf(e.atoms[e.n-1]) {
				st.ReflectionCut++
				continue
			}
		case DedupCanonical:
			if e.keyOf(e.atoms[0]) > e.keyOf(e.atoms[e.n-1]) {
				st.ReflectionCut++
				continue
			}
		}
		st.Emitted++
		fn(e.atoms[:e.n], e.pos[:e.n])
	}
}

// Count runs the enumeration without a visitor and returns the stats.
// It reports the force-set size |S(n)| (Emitted) and the search cost
// (Candidates) of the paper's Fig. 7 and §5.1.
func (e *Enumerator) Count(positions []geom.Vec3) Stats {
	return e.Visit(positions, func([]int32, []geom.Vec3) {})
}
