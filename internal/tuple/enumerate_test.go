package tuple

import (
	"math/rand"
	"testing"

	"sctuple/internal/cell"
	"sctuple/internal/core"
	"sctuple/internal/geom"
)

// testSystem builds a random uniform configuration binned on a lattice
// with the given cell dimensions.
func testSystem(t *testing.T, seed int64, natoms int, boxSide float64, dims geom.IVec3) (geom.Box, []geom.Vec3, *cell.Binning) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	box := geom.NewCubicBox(boxSide)
	pos := make([]geom.Vec3, natoms)
	for i := range pos {
		pos[i] = geom.V(rng.Float64()*boxSide, rng.Float64()*boxSide, rng.Float64()*boxSide)
	}
	lat, err := cell.NewLatticeDims(box, dims)
	if err != nil {
		t.Fatal(err)
	}
	return box, pos, cell.NewBinning(lat, pos)
}

// TestSCMatchesBruteForce is the gold test of the whole core+tuple
// stack: for n = 2, 3, 4 the SC pattern's force set, canonicalized,
// must equal Γ*(n) from brute force exactly (Theorem 2 made concrete).
func TestSCMatchesBruteForce(t *testing.T) {
	cases := []struct {
		n      int
		natoms int
		dims   geom.IVec3
	}{
		{2, 120, geom.IV(4, 4, 4)},
		{3, 70, geom.IV(4, 4, 4)},
		{4, 40, geom.IV(5, 5, 5)},
	}
	for _, c := range cases {
		for seed := int64(1); seed <= 3; seed++ {
			box, pos, bin := testSystem(t, seed*100+int64(c.n), c.natoms, 8.0, c.dims)
			cutoff := 0.95 * min3(bin.Lat.Side)
			e, err := NewEnumerator(bin, core.SC(c.n), cutoff, DedupAuto)
			if err != nil {
				t.Fatal(err)
			}
			got, st := CollectCanonical(e, pos)
			want := BruteForce(box, pos, c.n, cutoff)
			if !ChainsEqual(got, want) {
				t.Errorf("n=%d seed=%d: SC force set has %d tuples, brute force %d",
					c.n, seed, len(got), len(want))
			}
			if st.Emitted != int64(len(want)) {
				t.Errorf("n=%d seed=%d: emitted %d != |Γ*| %d (duplicates?)",
					c.n, seed, st.Emitted, len(want))
			}
		}
	}
}

// TestFSMatchesBruteForce verifies Lemma 1: the full-shell pattern with
// canonical dedup also reproduces Γ*(n) exactly, at roughly double the
// search cost.
func TestFSMatchesBruteForce(t *testing.T) {
	for _, n := range []int{2, 3} {
		dims := geom.IV(5, 5, 5)
		box, pos, bin := testSystem(t, int64(n), 60, 8.0, dims)
		cutoff := 0.95 * min3(bin.Lat.Side)
		e, err := NewEnumerator(bin, core.FS(n), cutoff, DedupAuto)
		if err != nil {
			t.Fatal(err)
		}
		if e.Dedup() != DedupCanonical {
			t.Fatalf("FS pattern resolved dedup %v, want canonical", e.Dedup())
		}
		got, _ := CollectCanonical(e, pos)
		want := BruteForce(box, pos, n, cutoff)
		if !ChainsEqual(got, want) {
			t.Errorf("n=%d: FS force set has %d tuples, brute force %d", n, len(got), len(want))
		}
	}
}

// TestHalfAndEighthShellMatchBruteForce covers the classic pair methods.
func TestHalfAndEighthShellMatchBruteForce(t *testing.T) {
	for _, shell := range []core.Shell{core.ShellFull, core.ShellHalf, core.ShellEighth} {
		box, pos, bin := testSystem(t, 42, 150, 9.0, geom.IV(4, 4, 4))
		cutoff := 0.9 * min3(bin.Lat.Side)
		e, err := NewEnumerator(bin, shell.Pattern(), cutoff, DedupAuto)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := CollectCanonical(e, pos)
		want := BruteForce(box, pos, 2, cutoff)
		if !ChainsEqual(got, want) {
			t.Errorf("%v: %d pairs, brute force %d", shell, len(got), len(want))
		}
	}
}

// TestFSCandidatesRoughlyDoubleSC quantifies §5.1 on a real
// configuration: FS examines about twice the candidates of SC.
func TestFSCandidatesRoughlyDoubleSC(t *testing.T) {
	_, pos, bin := testSystem(t, 7, 300, 12.0, geom.IV(6, 6, 6))
	cutoff := 0.9 * min3(bin.Lat.Side)
	scE, err := NewEnumerator(bin, core.SC(3), cutoff, DedupAuto)
	if err != nil {
		t.Fatal(err)
	}
	fsE, err := NewEnumerator(bin, core.FS(3), cutoff, DedupAuto)
	if err != nil {
		t.Fatal(err)
	}
	sc := scE.Count(pos)
	fs := fsE.Count(pos)
	ratio := float64(fs.Candidates) / float64(sc.Candidates)
	if ratio < 1.7 || ratio > 2.2 {
		t.Errorf("FS/SC candidate ratio = %g, want ≈ 27/14 = 1.93", ratio)
	}
	if fs.Emitted != sc.Emitted {
		t.Errorf("FS emitted %d != SC emitted %d", fs.Emitted, sc.Emitted)
	}
}

// TestDedupNoneCountsBothOrientations: without reflection filtering,
// every tuple appears in both orientations.
func TestDedupNoneCountsBothOrientations(t *testing.T) {
	_, pos, bin := testSystem(t, 8, 100, 8.0, geom.IV(4, 4, 4))
	cutoff := 0.9 * min3(bin.Lat.Side)
	fsRaw, err := NewEnumerator(bin, core.FS(2), cutoff, DedupNone)
	if err != nil {
		t.Fatal(err)
	}
	fsCan, err := NewEnumerator(bin, core.FS(2), cutoff, DedupCanonical)
	if err != nil {
		t.Fatal(err)
	}
	raw := fsRaw.Count(pos)
	can := fsCan.Count(pos)
	if raw.Emitted != 2*can.Emitted {
		t.Errorf("raw emitted %d != 2 × canonical %d", raw.Emitted, can.Emitted)
	}
}

// TestPalindromicFilterExactness: for the SC pattern the reflection
// cuts come only from palindromic paths, and the emitted set is exact.
func TestPalindromicFilterExactness(t *testing.T) {
	box, pos, bin := testSystem(t, 9, 80, 8.0, geom.IV(4, 4, 4))
	cutoff := 0.9 * min3(bin.Lat.Side)
	e, err := NewEnumerator(bin, core.SC(3), cutoff, DedupPalindromic)
	if err != nil {
		t.Fatal(err)
	}
	got, st := CollectCanonical(e, pos)
	want := BruteForce(box, pos, 3, cutoff)
	if !ChainsEqual(got, want) {
		t.Errorf("palindromic dedup: %d tuples, want %d", len(got), len(want))
	}
	if st.ReflectionCut == 0 {
		t.Error("expected some palindromic reflection cuts in a dense system")
	}
}

// TestVisitCellsPartitionEqualsWhole: anchoring at disjoint cell sets
// partitions the force set — the property parallel decomposition
// relies on.
func TestVisitCellsPartitionEqualsWhole(t *testing.T) {
	box, pos, bin := testSystem(t, 10, 90, 8.0, geom.IV(4, 4, 4))
	cutoff := 0.9 * min3(bin.Lat.Side)
	e, err := NewEnumerator(bin, core.SC(3), cutoff, DedupAuto)
	if err != nil {
		t.Fatal(err)
	}
	var all [][]int32
	var half1, half2 []geom.IVec3
	for i := 0; i < bin.Lat.NumCells(); i++ {
		q := bin.Lat.CellAt(i)
		if i%2 == 0 {
			half1 = append(half1, q)
		} else {
			half2 = append(half2, q)
		}
	}
	collect := func(cells []geom.IVec3) {
		e.VisitCells(cells, pos, func(atoms []int32, _ []geom.Vec3) {
			c := make([]int32, len(atoms))
			copy(c, atoms)
			all = append(all, Canonical(c))
		})
	}
	collect(half1)
	collect(half2)
	sortChains(all)
	want := BruteForce(box, pos, 3, cutoff)
	if !ChainsEqual(all, want) {
		t.Errorf("partitioned enumeration: %d tuples, want %d", len(all), len(want))
	}
}

// TestCutoffSmallerThanCell: a link cutoff well below the cell side
// (the r_cut3 < r_cut2 situation of the silica workload) must still be
// exact.
func TestCutoffSmallerThanCell(t *testing.T) {
	box, pos, bin := testSystem(t, 11, 200, 8.0, geom.IV(4, 4, 4))
	cutoff := 0.45 * min3(bin.Lat.Side)
	e, err := NewEnumerator(bin, core.SC(3), cutoff, DedupAuto)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := CollectCanonical(e, pos)
	want := BruteForce(box, pos, 3, cutoff)
	if !ChainsEqual(got, want) {
		t.Errorf("small cutoff: %d tuples, want %d", len(got), len(want))
	}
}

// TestEnumeratorRejectsOversizedCutoff and undersized lattices.
func TestEnumeratorValidation(t *testing.T) {
	_, _, bin := testSystem(t, 12, 10, 8.0, geom.IV(4, 4, 4))
	if _, err := NewEnumerator(bin, core.SC(2), 2.5, DedupAuto); err == nil {
		t.Error("cutoff > cell side accepted")
	}
	big := core.NewPattern(MaxN+1, core.NewPath(make([]geom.IVec3, MaxN+1)...))
	if _, err := NewEnumerator(bin, big, 1.0, DedupAuto); err == nil {
		t.Error("n > MaxN accepted")
	}
	_, _, small := testSystem(t, 13, 10, 8.0, geom.IV(2, 2, 2))
	if _, err := NewEnumerator(small, core.SC(2), 1.0, DedupAuto); err == nil {
		t.Error("2³ lattice accepted (needs ≥ 3 per side)")
	}
	// FS(3) spans [-2,2]: needs ≥ 5 cells per side.
	_, _, four := testSystem(t, 14, 10, 8.0, geom.IV(4, 4, 4))
	if _, err := NewEnumerator(four, core.FS(3), 1.0, DedupAuto); err == nil {
		t.Error("4³ lattice accepted for FS(3) span 4")
	}
}

// TestEmptySystem: enumerating zero atoms is a no-op, not a crash.
func TestEmptySystem(t *testing.T) {
	_, _, bin := testSystem(t, 15, 0, 8.0, geom.IV(4, 4, 4))
	e, err := NewEnumerator(bin, core.SC(3), 1.5, DedupAuto)
	if err != nil {
		t.Fatal(err)
	}
	st := e.Count(nil)
	if st.Emitted != 0 || st.Candidates != 0 {
		t.Errorf("empty system produced work: %v", st)
	}
}

// TestTupleGeometryAcrossBoundary: emitted positions must be
// image-resolved so consecutive distances are real distances.
func TestTupleGeometryAcrossBoundary(t *testing.T) {
	box := geom.NewCubicBox(9)
	// Chain crossing the periodic boundary in x.
	pos := []geom.Vec3{
		geom.V(8.8, 4.5, 4.5),
		geom.V(0.2, 4.5, 4.5),
		geom.V(1.5, 4.5, 4.5),
	}
	lat, _ := cell.NewLatticeDims(box, geom.IV(3, 3, 3))
	bin := cell.NewBinning(lat, pos)
	e, err := NewEnumerator(bin, core.SC(3), 2.9, DedupAuto)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	e.Visit(pos, func(atoms []int32, p []geom.Vec3) {
		found++
		for k := 1; k < len(p); k++ {
			d := p[k].Sub(p[k-1]).Norm()
			if d >= 2.9 {
				t.Errorf("emitted link distance %g ≥ cutoff", d)
			}
			want := box.Distance(pos[atoms[k]], pos[atoms[k-1]])
			if diff := d - want; diff > 1e-12 || diff < -1e-12 {
				t.Errorf("link %d: emitted distance %g, min-image %g", k, d, want)
			}
		}
	})
	// Exactly one triplet: 0-1-2 (distances 0.4+1.3 within cutoff,
	// plus pairs are not tuples here). Chain 1-0-2 blocked (d(0,2)=2.7 < 2.9!).
	// Distances: d01=0.4, d12=1.3, d02=2.7. Chains: 0-1-2 ✓, 1-0-2 (0.4, 2.7) ✓,
	// 0-2-1 (2.7, 1.3) ✓. All three are valid triplets.
	if found != 3 {
		t.Errorf("found %d boundary-crossing triplets, want 3", found)
	}
}

// TestStatsAccounting: counter identities that must hold exactly.
func TestStatsAccounting(t *testing.T) {
	_, pos, bin := testSystem(t, 16, 120, 8.0, geom.IV(4, 4, 4))
	e, err := NewEnumerator(bin, core.SC(2), 1.9, DedupAuto)
	if err != nil {
		t.Fatal(err)
	}
	st := e.Count(pos)
	if st.Cells != bin.Lat.NumCells() {
		t.Errorf("cells visited %d, want %d", st.Cells, bin.Lat.NumCells())
	}
	if st.PathApplications != int64(st.Cells)*int64(core.SC(2).Len()) {
		t.Errorf("path applications %d, want cells×|Ψ|", st.PathApplications)
	}
	// Visiting again accumulates independently and identically.
	st2 := e.Count(pos)
	if st2 != st {
		t.Errorf("re-enumeration differs: %+v vs %+v", st2, st)
	}
}

func min3(v geom.Vec3) float64 {
	m := v.X
	if v.Y < m {
		m = v.Y
	}
	if v.Z < m {
		m = v.Z
	}
	return m
}
