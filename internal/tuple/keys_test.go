package tuple

import (
	"math/rand"
	"testing"

	"sctuple/internal/cell"
	"sctuple/internal/core"
	"sctuple/internal/geom"
)

// TestBoundedEnumeratorMatchesPeriodicInterior: on a configuration
// confined to the interior cells (empty boundary layer), bounded and
// periodic enumeration see identical tuples.
func TestBoundedEnumeratorMatchesPeriodicInterior(t *testing.T) {
	box, pos, bin := testSystem(t, 31, 0, 10.0, geom.IV(5, 5, 5))
	_ = box
	// Fill only the interior 3×3×3 block of a 5×5×5 lattice.
	rng := rand.New(rand.NewSource(31))
	pos = pos[:0]
	for i := 0; i < 120; i++ {
		pos = append(pos, geom.V(2+6*rng.Float64(), 2+6*rng.Float64(), 2+6*rng.Float64()))
	}
	bin.Rebin(pos)

	per, err := NewEnumerator(bin, core.SC(3), 1.9, DedupAuto)
	if err != nil {
		t.Fatal(err)
	}
	bnd, err := NewBoundedEnumerator(bin, core.SC(3), 1.9, DedupAuto)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := CollectCanonical(per, pos)
	b, _ := CollectCanonical(bnd, pos)
	if !ChainsEqual(a, b) {
		t.Errorf("bounded %d tuples, periodic %d", len(b), len(a))
	}
}

// TestBoundedEnumeratorDropsBoundaryChains: with atoms at the lattice
// edge, the bounded enumerator must NOT wrap around while the periodic
// one does.
func TestBoundedEnumeratorDropsBoundaryChains(t *testing.T) {
	box := geom.NewCubicBox(9)
	pos := []geom.Vec3{
		geom.V(0.2, 4.5, 4.5), // cell x=0
		geom.V(8.8, 4.5, 4.5), // cell x=2 — within 0.4 Å periodically
	}
	lat, err := cell.NewLatticeDims(box, geom.IV(3, 3, 3))
	if err != nil {
		t.Fatal(err)
	}
	bin := cell.NewBinning(lat, pos)
	per, err := NewEnumerator(bin, core.SC(2), 2.5, DedupAuto)
	if err != nil {
		t.Fatal(err)
	}
	bnd, err := NewBoundedEnumerator(bin, core.SC(2), 2.5, DedupAuto)
	if err != nil {
		t.Fatal(err)
	}
	if st := per.Count(pos); st.Emitted != 1 {
		t.Errorf("periodic emitted %d, want the boundary-crossing pair", st.Emitted)
	}
	if st := bnd.Count(pos); st.Emitted != 0 {
		t.Errorf("bounded emitted %d, want 0 (no wrapping)", st.Emitted)
	}
}

// TestSetKeysControlsCanonicalOrientation: with reversed keys, the
// canonical filter keeps the opposite orientation — and the tuple set
// is unchanged up to reflection.
func TestSetKeysControlsCanonicalOrientation(t *testing.T) {
	_, pos, bin := testSystem(t, 32, 100, 9.0, geom.IV(4, 4, 4))
	e, err := NewEnumerator(bin, core.FS(2), 2.0, DedupCanonical)
	if err != nil {
		t.Fatal(err)
	}
	// Default keys: first index below last.
	var defaultOrient [][2]int32
	e.Visit(pos, func(atoms []int32, _ []geom.Vec3) {
		if atoms[0] > atoms[1] {
			t.Fatal("default canonical orientation violated")
		}
		defaultOrient = append(defaultOrient, [2]int32{atoms[0], atoms[1]})
	})

	// Reversed keys: orientation flips, pair set identical.
	keys := make([]int64, len(pos))
	for i := range keys {
		keys[i] = int64(len(pos) - i)
	}
	e.SetKeys(keys)
	seen := make(map[[2]int32]bool)
	count := 0
	e.Visit(pos, func(atoms []int32, _ []geom.Vec3) {
		if keys[atoms[0]] > keys[atoms[1]] {
			t.Fatal("key-based canonical orientation violated")
		}
		seen[[2]int32{atoms[1], atoms[0]}] = true // store reversed
		count++
	})
	if count != len(defaultOrient) {
		t.Fatalf("key change altered pair count: %d vs %d", count, len(defaultOrient))
	}
	for _, p := range defaultOrient {
		if !seen[p] {
			t.Fatalf("pair %v missing under reversed keys", p)
		}
	}
}

// TestSetKeysNilRestoresDefault.
func TestSetKeysNilRestoresDefault(t *testing.T) {
	_, pos, bin := testSystem(t, 33, 60, 9.0, geom.IV(4, 4, 4))
	e, err := NewEnumerator(bin, core.FS(2), 2.0, DedupCanonical)
	if err != nil {
		t.Fatal(err)
	}
	before := e.Count(pos)
	keys := make([]int64, len(pos))
	for i := range keys {
		keys[i] = int64(i) * 7
	}
	e.SetKeys(keys)
	during := e.Count(pos)
	e.SetKeys(nil)
	after := e.Count(pos)
	if before.Emitted != during.Emitted || before.Emitted != after.Emitted {
		t.Errorf("emitted counts: %d / %d / %d", before.Emitted, during.Emitted, after.Emitted)
	}
}
