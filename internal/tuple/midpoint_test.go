package tuple

import (
	"testing"

	"sctuple/internal/core"
	"sctuple/internal/geom"
)

// TestMidpointSCMatchesBruteForce: the §6 generalization — SC patterns
// on a lattice with cells smaller than the cutoff (radius-k steps) —
// must still reproduce Γ*(n) exactly.
func TestMidpointSCMatchesBruteForce(t *testing.T) {
	cases := []struct {
		n, k   int
		natoms int
		dims   geom.IVec3
	}{
		{2, 2, 150, geom.IV(7, 7, 7)},
		{2, 3, 120, geom.IV(10, 10, 10)},
		{3, 2, 60, geom.IV(9, 9, 9)},
	}
	for _, c := range cases {
		box, pos, bin := testSystem(t, int64(10*c.n+c.k), c.natoms, 9.0, c.dims)
		// Cutoff close to k cell sides: the finest search the radius
		// supports.
		cutoff := 0.95 * float64(c.k) * min3(bin.Lat.Side)
		e, err := NewEnumerator(bin, core.SCRadius(c.n, c.k), cutoff, DedupAuto)
		if err != nil {
			t.Fatal(err)
		}
		got, st := CollectCanonical(e, pos)
		want := BruteForce(box, pos, c.n, cutoff)
		if !ChainsEqual(got, want) {
			t.Errorf("n=%d k=%d: midpoint SC force set %d tuples, brute force %d",
				c.n, c.k, len(got), len(want))
		}
		if st.Emitted != int64(len(want)) {
			t.Errorf("n=%d k=%d: emitted %d, want %d", c.n, c.k, st.Emitted, len(want))
		}
	}
}

// TestMidpointTighterSearch: at equal cutoff, the radius-2 lattice
// must examine fewer candidates per emitted tuple than the radius-1
// lattice — §6's "SC improves the midpoint method" measured for real.
func TestMidpointTighterSearch(t *testing.T) {
	box := geom.NewCubicBox(12)
	_ = box
	cutoff := 1.9
	// Radius-1: cells ≥ cutoff (6 cells of side 2).
	_, pos, binCoarse := testSystem(t, 77, 800, 12.0, geom.IV(6, 6, 6))
	eCoarse, err := NewEnumerator(binCoarse, core.SC(2), cutoff, DedupAuto)
	if err != nil {
		t.Fatal(err)
	}
	// Radius-2: cells of side 1 (12 per axis), same positions.
	_, _, binFine := testSystem(t, 77, 800, 12.0, geom.IV(12, 12, 12))
	eFine, err := NewEnumerator(binFine, core.SCRadius(2, 2), cutoff, DedupAuto)
	if err != nil {
		t.Fatal(err)
	}
	coarse := eCoarse.Count(pos)
	fine := eFine.Count(pos)
	if coarse.Emitted != fine.Emitted {
		t.Fatalf("force sets differ: coarse %d, fine %d", coarse.Emitted, fine.Emitted)
	}
	// Candidates per emitted pair: fine lattice should be tighter.
	rc := float64(coarse.Candidates) / float64(coarse.Emitted)
	rf := float64(fine.Candidates) / float64(fine.Emitted)
	if !(rf < rc) {
		t.Errorf("fine lattice not tighter: %.2f vs %.2f candidates/pair", rf, rc)
	}
}

// TestEnumeratorRejectsTooCoarseRadius: a radius-1 pattern with a
// cutoff beyond one cell side must be rejected, while the radius-2
// pattern accepts it.
func TestEnumeratorRejectsTooCoarseRadius(t *testing.T) {
	_, _, bin := testSystem(t, 78, 50, 12.0, geom.IV(12, 12, 12))
	if _, err := NewEnumerator(bin, core.SC(2), 1.9, DedupAuto); err == nil {
		t.Error("radius-1 pattern accepted cutoff of ~2 cell sides")
	}
	if _, err := NewEnumerator(bin, core.SCRadius(2, 2), 1.9, DedupAuto); err != nil {
		t.Errorf("radius-2 pattern rejected: %v", err)
	}
}
