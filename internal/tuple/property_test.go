package tuple

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sctuple/internal/cell"
	"sctuple/internal/core"
	"sctuple/internal/geom"
)

// TestPropertySCEqualsFSEqualsBrute: a quick-check over randomized
// system shapes — box size, atom count, cutoff fraction, seed — that
// the SC and FS force sets both equal brute force for pairs and
// triplets. This is the paper's completeness theorem as a random
// property rather than a fixed-seed example.
func TestPropertySCEqualsFSEqualsBrute(t *testing.T) {
	property := func(seed int64, sizeSel, cutSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		u := uint64(seed)
		dims := 4 + int(sizeSel)%3 // 4..6 cells per side
		side := 8.0 + float64(u%7)
		n := 40 + int(u%40)
		cutFrac := 0.5 + 0.45*float64(cutSel)/255.0

		box := geom.NewCubicBox(side)
		pos := make([]geom.Vec3, n)
		for i := range pos {
			pos[i] = geom.V(rng.Float64()*side, rng.Float64()*side, rng.Float64()*side)
		}
		lat, err := cell.NewLatticeDims(box, geom.IV(dims, dims, dims))
		if err != nil {
			return false
		}
		bin := cell.NewBinning(lat, pos)
		cutoff := cutFrac * lat.Side.X

		for _, n := range []int{2, 3} {
			if n == 3 && dims < 5 {
				continue // FS(3) needs 5 cells per side
			}
			want := BruteForce(box, pos, n, cutoff)
			for _, pat := range []*core.Pattern{core.SC(n), core.FS(n)} {
				e, err := NewEnumerator(bin, pat, cutoff, DedupAuto)
				if err != nil {
					return false
				}
				got, _ := CollectCanonical(e, pos)
				if !ChainsEqual(got, want) {
					t.Logf("seed=%d dims=%d cutoff=%.3f n=%d: %d vs %d tuples",
						seed, dims, cutoff, n, len(got), len(want))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyStatsInvariants: counter identities that must hold for
// any random configuration.
func TestPropertyStatsInvariants(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		box := geom.NewCubicBox(10)
		n := 30 + int(uint64(seed)%120)
		pos := make([]geom.Vec3, n)
		for i := range pos {
			pos[i] = geom.V(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10)
		}
		lat, _ := cell.NewLatticeDims(box, geom.IV(4, 4, 4))
		bin := cell.NewBinning(lat, pos)
		e, err := NewEnumerator(bin, core.SC(2), 2.2, DedupAuto)
		if err != nil {
			return false
		}
		st := e.Count(pos)
		// Every candidate either extends, gets pruned, or (at the last
		// level) resolves to emitted/reflection-cut/duplicate.
		if st.Emitted+st.ReflectionCut+st.DistancePruned+st.DuplicateAtom > st.Candidates {
			return false
		}
		// Pair count bounded by N(N-1)/2 plus periodic images.
		if st.Emitted > int64(n*(n-1)) {
			return false
		}
		return st.Cells == 64 && st.PathApplications == int64(64*core.SC(2).Len())
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
