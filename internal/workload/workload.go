// Package workload builds the atom configurations used by examples,
// tests, and the paper's benchmarks: uniform random fluids (the
// paper's strong-scaling systems use uniformly distributed atoms, §5.3)
// and β-cristobalite-like crystalline silica for physically meaningful
// SiO₂ runs.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"sctuple/internal/geom"
	"sctuple/internal/potential"
)

// Config is a complete initial condition: a box, positions, species
// indices (into some model's species table), and velocities.
type Config struct {
	Box     geom.Box
	Pos     []geom.Vec3
	Species []int32
	Vel     []geom.Vec3
}

// N returns the number of atoms.
func (c *Config) N() int { return len(c.Pos) }

// Validate checks internal consistency.
func (c *Config) Validate() error {
	if len(c.Species) != len(c.Pos) || len(c.Vel) != len(c.Pos) {
		return fmt.Errorf("workload: inconsistent array lengths %d/%d/%d",
			len(c.Pos), len(c.Species), len(c.Vel))
	}
	for i, r := range c.Pos {
		if !c.Box.Contains(r) {
			return fmt.Errorf("workload: atom %d at %v outside box", i, r)
		}
	}
	return nil
}

// UniformRandom places n atoms uniformly in a cubic box of the given
// side, drawing species from the given proportions (e.g. {1, 2} for
// SiO₂ stoichiometry). Velocities are zero; call Thermalize to set a
// temperature. This is the uniform-density workload of the paper's
// benchmarks.
func UniformRandom(rng *rand.Rand, side float64, n int, proportions []float64) *Config {
	box := geom.NewCubicBox(side)
	cfg := &Config{
		Box:     box,
		Pos:     make([]geom.Vec3, n),
		Species: make([]int32, n),
		Vel:     make([]geom.Vec3, n),
	}
	total := 0.0
	for _, p := range proportions {
		total += p
	}
	for i := range cfg.Pos {
		cfg.Pos[i] = geom.V(rng.Float64()*side, rng.Float64()*side, rng.Float64()*side)
		u := rng.Float64() * total
		acc := 0.0
		for s, p := range proportions {
			acc += p
			if u < acc {
				cfg.Species[i] = int32(s)
				break
			}
		}
	}
	return cfg
}

// SilicaDensity is the atom number density of amorphous silica
// (2.2 g/cm³ ≈ 0.0662 atoms/Å³).
const SilicaDensity = 0.0662

// UniformSilica builds a uniform random SiO₂ configuration (1 Si : 2 O)
// with the given total atom count at amorphous-silica density,
// enforcing a minimum separation so the steep Vashishta core does not
// blow up the first MD steps. It is the workload shape used for the
// paper's granularity and scaling benchmarks.
func UniformSilica(rng *rand.Rand, n int) *Config {
	side := math.Cbrt(float64(n) / SilicaDensity)
	cfg := withMinSeparation(rng, side, n, 1.35)
	// Deterministic stoichiometry: every third atom Si.
	for i := range cfg.Species {
		if i%3 == 0 {
			cfg.Species[i] = 0 // Si
		} else {
			cfg.Species[i] = 1 // O
		}
	}
	return cfg
}

// Void builds an n-atom SiO₂ configuration with a spherical void of
// radius radiusFrac·side/2 carved out of a uniform fluid: atoms are
// drawn as in UniformSilica but rejected inside the sphere, so the
// material piles up around the void. The box side is the uniform one
// (overall density = SilicaDensity), which makes the occupied region
// denser than uniform. The sphere sits at (¼, ¼, ¼) of the box, NOT
// the center: in a periodic box a centered sphere is symmetric about
// every slab midplane, which makes the uniform slab decomposition
// already locally optimal — the off-center sphere is what gives an
// adaptive balancer boundaries worth moving on every axis, the
// purpose of this workload. radiusFrac ∈ (0, 1); 0.6 leaves ~11% of
// the volume empty.
func Void(rng *rand.Rand, n int, radiusFrac float64) *Config {
	side := math.Cbrt(float64(n) / SilicaDensity)
	radius := radiusFrac * side / 2
	center := geom.V(side/4, side/4, side/4)
	r2 := radius * radius
	box := geom.NewCubicBox(side)
	cfg := withSampler(rng, side, n, 1.30, func() geom.Vec3 {
		for {
			r := geom.V(rng.Float64()*side, rng.Float64()*side, rng.Float64()*side)
			if box.MinImage(r.Sub(center)).Norm2() >= r2 {
				return r
			}
		}
	})
	silicaSpecies(cfg)
	return cfg
}

// DensityGradient builds an n-atom SiO₂ configuration whose number
// density ramps linearly along x from 1 at the low face to ratio at
// the high face (mean density = SilicaDensity, so the box matches
// UniformSilica's). Positions along x follow the inverse CDF of the
// linear ramp; y and z stay uniform. The ramp loads the high-x ranks
// of a slab decomposition proportionally harder — the directional
// counterpart of Void for exercising per-axis boundary moves.
func DensityGradient(rng *rand.Rand, n int, ratio float64) *Config {
	side := math.Cbrt(float64(n) / SilicaDensity)
	a := (ratio - 1) / 2 // pdf p(t) ∝ 1 + 2a·t on t ∈ [0,1]
	cfg := withSampler(rng, side, n, 1.30, func() geom.Vec3 {
		u := rng.Float64()
		t := u
		if a != 0 {
			t = (-1 + math.Sqrt(1+4*a*u*(1+a))) / (2 * a)
		}
		return geom.V(t*side, rng.Float64()*side, rng.Float64()*side)
	})
	silicaSpecies(cfg)
	return cfg
}

// silicaSpecies assigns deterministic 1:2 SiO₂ stoichiometry (every
// third atom Si), matching UniformSilica.
func silicaSpecies(cfg *Config) {
	for i := range cfg.Species {
		if i%3 == 0 {
			cfg.Species[i] = 0 // Si
		} else {
			cfg.Species[i] = 1 // O
		}
	}
}

// withMinSeparation draws uniform positions rejecting any closer than
// minSep to a previous atom (checked on a throwaway grid).
func withMinSeparation(rng *rand.Rand, side float64, n int, minSep float64) *Config {
	return withSampler(rng, side, n, minSep, func() geom.Vec3 {
		return geom.V(rng.Float64()*side, rng.Float64()*side, rng.Float64()*side)
	})
}

// withSampler draws positions from sample (which must return points
// inside the cubic box) rejecting any closer than minSep to a previous
// atom (checked on a throwaway grid).
func withSampler(rng *rand.Rand, side float64, n int, minSep float64, sample func() geom.Vec3) *Config {
	box := geom.NewCubicBox(side)
	cfg := &Config{
		Box:     box,
		Pos:     make([]geom.Vec3, 0, n),
		Species: make([]int32, n),
		Vel:     make([]geom.Vec3, n),
	}
	// Simple uniform hash grid for the rejection test.
	cells := int(side / minSep)
	if cells < 1 {
		cells = 1
	}
	grid := make(map[[3]int][]geom.Vec3)
	key := func(r geom.Vec3) [3]int {
		k := [3]int{int(r.X / side * float64(cells)), int(r.Y / side * float64(cells)), int(r.Z / side * float64(cells))}
		for c := range k {
			if k[c] >= cells {
				k[c] = cells - 1
			}
		}
		return k
	}
	sep2 := minSep * minSep
	maxTries := 200 * n
	for len(cfg.Pos) < n && maxTries > 0 {
		maxTries--
		r := sample()
		k := key(r)
		ok := true
	scan:
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for dz := -1; dz <= 1; dz++ {
					kk := [3]int{mod(k[0]+dx, cells), mod(k[1]+dy, cells), mod(k[2]+dz, cells)}
					for _, q := range grid[kk] {
						if box.Distance2(r, q) < sep2 {
							ok = false
							break scan
						}
					}
				}
			}
		}
		if !ok {
			continue
		}
		grid[k] = append(grid[k], r)
		cfg.Pos = append(cfg.Pos, r)
	}
	// If rejection stalls (density too high for minSep), fill the rest
	// unconditionally; the thermostat equilibrates the residual
	// overlaps.
	for len(cfg.Pos) < n {
		cfg.Pos = append(cfg.Pos, sample())
	}
	return cfg
}

func mod(a, n int) int {
	m := a % n
	if m < 0 {
		m += n
	}
	return m
}

// BetaCristobalite builds an nx×ny×nz supercell of idealized
// β-cristobalite SiO₂: silicon on a diamond lattice (conventional cell
// a = 7.16 Å) and oxygen at the Si-Si bond midpoints. Species 0 is Si,
// species 1 is O — matching potential.NewSilicaModel. Each conventional
// cell holds 24 atoms (8 Si + 16 O).
func BetaCristobalite(nx, ny, nz int) *Config {
	const a = 7.16
	box := geom.NewBox(float64(nx)*a, float64(ny)*a, float64(nz)*a)
	fcc := []geom.Vec3{
		{X: 0, Y: 0, Z: 0},
		{X: 0, Y: 0.5, Z: 0.5},
		{X: 0.5, Y: 0, Z: 0.5},
		{X: 0.5, Y: 0.5, Z: 0},
	}
	bondDirs := []geom.Vec3{
		{X: 1, Y: 1, Z: 1},
		{X: 1, Y: -1, Z: -1},
		{X: -1, Y: 1, Z: -1},
		{X: -1, Y: -1, Z: 1},
	}
	cfg := &Config{Box: box}
	add := func(r geom.Vec3, s int32) {
		cfg.Pos = append(cfg.Pos, box.Wrap(r))
		cfg.Species = append(cfg.Species, s)
	}
	for ix := 0; ix < nx; ix++ {
		for iy := 0; iy < ny; iy++ {
			for iz := 0; iz < nz; iz++ {
				origin := geom.V(float64(ix)*a, float64(iy)*a, float64(iz)*a)
				for _, f := range fcc {
					siA := origin.Add(f.Scale(a))
					add(siA, 0)                            // sublattice A
					add(siA.Add(geom.V(a/4, a/4, a/4)), 0) // sublattice B
					for _, d := range bondDirs {           // O at bond midpoints
						add(siA.Add(d.Scale(a/8)), 1)
					}
				}
			}
		}
	}
	cfg.Vel = make([]geom.Vec3, len(cfg.Pos))
	return cfg
}

// Thermalize draws Maxwell-Boltzmann velocities at temperature T (K)
// for the given model's species masses and removes the net momentum.
func (c *Config) Thermalize(rng *rand.Rand, model *potential.Model, tempK float64) {
	const kB = 8.617333262e-5 // eV/K
	// Velocity unit: Å/fs. v² scale: kB·T/m in eV/amu → ×
	// 9.648533e-3 Å²/fs² per (eV/amu).
	const accel = 9.648533212e-3
	var pSum geom.Vec3
	var mSum float64
	for i := range c.Vel {
		m := model.Species[c.Species[i]].Mass
		sd := math.Sqrt(kB * tempK / m * accel)
		c.Vel[i] = geom.V(rng.NormFloat64()*sd, rng.NormFloat64()*sd, rng.NormFloat64()*sd)
		pSum = pSum.Add(c.Vel[i].Scale(m))
		mSum += m
	}
	if len(c.Vel) == 0 {
		return
	}
	drift := pSum.Scale(1 / mSum)
	for i := range c.Vel {
		c.Vel[i] = c.Vel[i].Sub(drift)
	}
}

// LJFluid builds an n-atom single-species fluid on a perturbed simple
// cubic lattice at the given reduced density ρ* = N σ³/V, a standard
// Lennard-Jones quickstart workload.
func LJFluid(rng *rand.Rand, n int, density, sigma float64) *Config {
	side := math.Cbrt(float64(n) / density * sigma * sigma * sigma)
	perSide := int(math.Ceil(math.Cbrt(float64(n))))
	spacing := side / float64(perSide)
	box := geom.NewCubicBox(side)
	cfg := &Config{
		Box:     box,
		Species: make([]int32, n),
		Vel:     make([]geom.Vec3, n),
	}
	jitter := 0.05 * spacing
	for ix := 0; ix < perSide && len(cfg.Pos) < n; ix++ {
		for iy := 0; iy < perSide && len(cfg.Pos) < n; iy++ {
			for iz := 0; iz < perSide && len(cfg.Pos) < n; iz++ {
				r := geom.V(
					(float64(ix)+0.5)*spacing+rng.NormFloat64()*jitter,
					(float64(iy)+0.5)*spacing+rng.NormFloat64()*jitter,
					(float64(iz)+0.5)*spacing+rng.NormFloat64()*jitter,
				)
				cfg.Pos = append(cfg.Pos, box.Wrap(r))
			}
		}
	}
	return cfg
}
