package workload

import (
	"math"
	"math/rand"
	"testing"

	"sctuple/internal/geom"
	"sctuple/internal/potential"
)

func TestUniformRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := UniformRandom(rng, 20, 600, []float64{1, 2})
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.N() != 600 {
		t.Fatalf("N = %d", cfg.N())
	}
	counts := [2]int{}
	for _, s := range cfg.Species {
		counts[s]++
	}
	// 1:2 proportions within sampling noise.
	frac := float64(counts[1]) / 600
	if math.Abs(frac-2.0/3.0) > 0.06 {
		t.Errorf("species-1 fraction %g, want ≈ 2/3", frac)
	}
}

func TestUniformSilica(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := UniformSilica(rng, 900)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// Density must match amorphous silica.
	density := float64(cfg.N()) / cfg.Box.Volume()
	if math.Abs(density-SilicaDensity) > 0.01*SilicaDensity {
		t.Errorf("density %g, want %g", density, SilicaDensity)
	}
	// Exact 1:2 stoichiometry.
	si := 0
	for _, s := range cfg.Species {
		if s == 0 {
			si++
		}
	}
	if si != 300 {
		t.Errorf("Si count %d, want 300", si)
	}
	// Minimum separation: spot check.
	for i := 0; i < 200; i++ {
		a, b := rng.Intn(cfg.N()), rng.Intn(cfg.N())
		if a != b && cfg.Box.Distance(cfg.Pos[a], cfg.Pos[b]) < 1.0 {
			t.Fatalf("atoms %d,%d closer than 1 Å", a, b)
		}
	}
}

func TestBetaCristobalite(t *testing.T) {
	cfg := BetaCristobalite(2, 3, 1)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.N() != 24*2*3*1 {
		t.Fatalf("N = %d, want %d", cfg.N(), 24*6)
	}
	si, o := 0, 0
	for _, s := range cfg.Species {
		if s == 0 {
			si++
		} else {
			o++
		}
	}
	if o != 2*si {
		t.Errorf("stoichiometry Si=%d O=%d", si, o)
	}
	// Each O sits 7.16·√3/8 ≈ 1.55 Å from its two Si neighbors.
	model := potential.NewSilicaModel()
	_ = model
	wantBond := 7.16 * math.Sqrt(3) / 8
	bonds := 0
	for i, s := range cfg.Species {
		if s != 1 {
			continue
		}
		for j, s2 := range cfg.Species {
			if s2 != 0 {
				continue
			}
			d := cfg.Box.Distance(cfg.Pos[i], cfg.Pos[j])
			if math.Abs(d-wantBond) < 1e-9 {
				bonds++
			}
		}
	}
	if bonds != 2*o {
		t.Errorf("Si-O bonds at ideal length: %d, want %d", bonds, 2*o)
	}
}

func TestThermalize(t *testing.T) {
	model := potential.NewSilicaModel()
	cfg := BetaCristobalite(2, 2, 2)
	cfg.Thermalize(rand.New(rand.NewSource(3)), model, 300)
	// Zero net momentum.
	var px, py, pz float64
	for i, v := range cfg.Vel {
		m := model.Species[cfg.Species[i]].Mass
		px += m * v.X
		py += m * v.Y
		pz += m * v.Z
	}
	if math.Abs(px)+math.Abs(py)+math.Abs(pz) > 1e-9 {
		t.Errorf("net momentum (%g,%g,%g)", px, py, pz)
	}
}

func TestLJFluid(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := LJFluid(rng, 216, 0.6, 3.4)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.N() != 216 {
		t.Fatalf("N = %d", cfg.N())
	}
	density := float64(cfg.N()) * 3.4 * 3.4 * 3.4 / cfg.Box.Volume()
	if math.Abs(density-0.6) > 0.01 {
		t.Errorf("reduced density %g, want 0.6", density)
	}
}

func TestVoid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := Void(rng, 3000, 0.6)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.N() != 3000 {
		t.Fatalf("N = %d", cfg.N())
	}
	side := cfg.Box.L.X
	radius := 0.6 * side / 2
	center := geom.V(side/4, side/4, side/4)
	inside := 0
	for _, r := range cfg.Pos {
		if cfg.Box.MinImage(r.Sub(center)).Norm2() < radius*radius {
			inside++
		}
	}
	if inside != 0 {
		t.Errorf("%d atoms inside the void", inside)
	}
	// Stoichiometry: 1 Si : 2 O.
	si := 0
	for _, s := range cfg.Species {
		if s == 0 {
			si++
		}
	}
	if si != 1000 {
		t.Errorf("%d Si atoms, want 1000", si)
	}
	// Box at uniform-silica side: density concentrated in the shell.
	wantSide := math.Cbrt(3000 / SilicaDensity)
	if math.Abs(side-wantSide) > 1e-9 {
		t.Errorf("side %g, want %g", side, wantSide)
	}
}

func TestDensityGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const ratio = 2.0
	cfg := DensityGradient(rng, 6000, ratio)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.N() != 6000 {
		t.Fatalf("N = %d", cfg.N())
	}
	// The low-x and high-x quarters of the box must hold atom counts in
	// roughly the ramp's proportion: the mean of 1+(ratio-1)t over
	// [0,1/4] vs [3/4,1] is (1+(ratio-1)/8) : (1+7(ratio-1)/8). The
	// min-separation rejection flattens the dense end slightly, hence
	// the loose tolerance.
	side := cfg.Box.L.X
	lo, hi := 0, 0
	for _, r := range cfg.Pos {
		switch {
		case r.X < side/4:
			lo++
		case r.X >= 3*side/4:
			hi++
		}
	}
	wantRatio := (1 + 7*(ratio-1)/8.0) / (1 + (ratio-1)/8.0)
	got := float64(hi) / float64(lo)
	if math.Abs(got-wantRatio)/wantRatio > 0.15 {
		t.Errorf("high/low quarter count ratio %.2f, want %.2f", got, wantRatio)
	}
	if lo == 0 || hi == 0 {
		t.Errorf("degenerate quarter counts lo=%d hi=%d", lo, hi)
	}
}
