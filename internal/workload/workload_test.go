package workload

import (
	"math"
	"math/rand"
	"testing"

	"sctuple/internal/potential"
)

func TestUniformRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := UniformRandom(rng, 20, 600, []float64{1, 2})
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.N() != 600 {
		t.Fatalf("N = %d", cfg.N())
	}
	counts := [2]int{}
	for _, s := range cfg.Species {
		counts[s]++
	}
	// 1:2 proportions within sampling noise.
	frac := float64(counts[1]) / 600
	if math.Abs(frac-2.0/3.0) > 0.06 {
		t.Errorf("species-1 fraction %g, want ≈ 2/3", frac)
	}
}

func TestUniformSilica(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := UniformSilica(rng, 900)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// Density must match amorphous silica.
	density := float64(cfg.N()) / cfg.Box.Volume()
	if math.Abs(density-SilicaDensity) > 0.01*SilicaDensity {
		t.Errorf("density %g, want %g", density, SilicaDensity)
	}
	// Exact 1:2 stoichiometry.
	si := 0
	for _, s := range cfg.Species {
		if s == 0 {
			si++
		}
	}
	if si != 300 {
		t.Errorf("Si count %d, want 300", si)
	}
	// Minimum separation: spot check.
	for i := 0; i < 200; i++ {
		a, b := rng.Intn(cfg.N()), rng.Intn(cfg.N())
		if a != b && cfg.Box.Distance(cfg.Pos[a], cfg.Pos[b]) < 1.0 {
			t.Fatalf("atoms %d,%d closer than 1 Å", a, b)
		}
	}
}

func TestBetaCristobalite(t *testing.T) {
	cfg := BetaCristobalite(2, 3, 1)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.N() != 24*2*3*1 {
		t.Fatalf("N = %d, want %d", cfg.N(), 24*6)
	}
	si, o := 0, 0
	for _, s := range cfg.Species {
		if s == 0 {
			si++
		} else {
			o++
		}
	}
	if o != 2*si {
		t.Errorf("stoichiometry Si=%d O=%d", si, o)
	}
	// Each O sits 7.16·√3/8 ≈ 1.55 Å from its two Si neighbors.
	model := potential.NewSilicaModel()
	_ = model
	wantBond := 7.16 * math.Sqrt(3) / 8
	bonds := 0
	for i, s := range cfg.Species {
		if s != 1 {
			continue
		}
		for j, s2 := range cfg.Species {
			if s2 != 0 {
				continue
			}
			d := cfg.Box.Distance(cfg.Pos[i], cfg.Pos[j])
			if math.Abs(d-wantBond) < 1e-9 {
				bonds++
			}
		}
	}
	if bonds != 2*o {
		t.Errorf("Si-O bonds at ideal length: %d, want %d", bonds, 2*o)
	}
}

func TestThermalize(t *testing.T) {
	model := potential.NewSilicaModel()
	cfg := BetaCristobalite(2, 2, 2)
	cfg.Thermalize(rand.New(rand.NewSource(3)), model, 300)
	// Zero net momentum.
	var px, py, pz float64
	for i, v := range cfg.Vel {
		m := model.Species[cfg.Species[i]].Mass
		px += m * v.X
		py += m * v.Y
		pz += m * v.Z
	}
	if math.Abs(px)+math.Abs(py)+math.Abs(pz) > 1e-9 {
		t.Errorf("net momentum (%g,%g,%g)", px, py, pz)
	}
}

func TestLJFluid(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := LJFluid(rng, 216, 0.6, 3.4)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.N() != 216 {
		t.Fatalf("N = %d", cfg.N())
	}
	density := float64(cfg.N()) * 3.4 * 3.4 * 3.4 / cfg.Box.Volume()
	if math.Abs(density-0.6) > 0.01 {
		t.Errorf("reduced density %g, want 0.6", density)
	}
}
